//! No-op `Serialize`/`Deserialize` derive macros for the offline serde
//! shim. Since the shim traits are empty markers, the derives only need to
//! name the type being derived for; no `syn`/`quote` dependency is
//! available offline, so the item header is parsed by hand.

use proc_macro::{TokenStream, TokenTree};

/// Extract the type name and a rendered generics header from the item.
///
/// Returns `(name, impl_generics, ty_generics)`, e.g. for
/// `struct Foo<T: Clone>` → `("Foo", "<T: Clone>", "<T>")`. Only plain type
/// and lifetime parameters are supported, which covers every derive site in
/// this workspace (all of them are non-generic today).
fn parse_item_header(input: TokenStream) -> (String, String, String) {
    let mut iter = input.into_iter().peekable();
    // Skip attributes and visibility until the `struct`/`enum` keyword.
    for tt in iter.by_ref() {
        match &tt {
            TokenTree::Ident(id) if *id.to_string() == *"struct" || *id.to_string() == *"enum" => {
                break;
            }
            _ => continue,
        }
    }
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other:?}"),
    };
    // Collect a raw `<...>` generics section if present.
    let mut impl_generics = String::new();
    let mut ty_generics = String::new();
    if matches!(&iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        let mut depth = 0i32;
        let mut raw = Vec::new();
        for tt in iter.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    _ => {}
                }
            }
            raw.push(tt.to_string());
            if depth == 0 {
                break;
            }
        }
        impl_generics = raw.join(" ");
        // Parameter names only (strip bounds) for the type position.
        let inner = &impl_generics[1..impl_generics.len() - 2];
        let names: Vec<String> = inner
            .split(',')
            .map(|p| p.split(':').next().unwrap_or("").trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        ty_generics = format!("<{}>", names.join(", "));
    }
    (name, impl_generics, ty_generics)
}

/// Derive the marker `serde::Serialize` impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, imp, ty) = parse_item_header(input);
    format!("impl {imp} ::serde::Serialize for {name} {ty} {{}}")
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derive the marker `serde::Deserialize` impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, imp, ty) = parse_item_header(input);
    let imp = if imp.is_empty() {
        "<'de>".to_string()
    } else {
        format!("<'de, {}", &imp[1..])
    };
    format!("impl {imp} ::serde::Deserialize<'de> for {name} {ty} {{}}")
        .parse()
        .expect("generated Deserialize impl must parse")
}
