//! Offline stand-in for the `criterion` crate.
//!
//! Provides the measurement API surface this workspace's benches use
//! (`Criterion`, benchmark groups, `BenchmarkId`, `Throughput`,
//! `black_box`, `criterion_group!`/`criterion_main!`) backed by a simple
//! median-of-samples wall-clock harness. No statistics, plots, or baseline
//! comparisons — each benchmark prints one line:
//! `group/name  median 12.345 µs/iter (11 samples)`.
//!
//! In test builds (`cargo test --benches`) each benchmark still executes,
//! which keeps bench code compile- and run-checked.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time per measurement sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(20);
/// Hard cap on samples per benchmark (keeps `cargo bench` fast offline).
const MAX_SAMPLES: usize = 15;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A parameterized id, printed as `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Bare id from a function name.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(p) if self.function.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: s.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: s,
            parameter: None,
        }
    }
}

/// Throughput annotation (accepted, echoed in the output line).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The timing driver passed to benchmark closures.
pub struct Bencher {
    /// (iterations, elapsed) per sample, filled by [`Bencher::iter`].
    samples: Vec<(u64, Duration)>,
    sample_count: usize,
}

impl Bencher {
    /// Measure `f`, called repeatedly; the return value is black-boxed so
    /// the computation is not optimized away.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Calibrate: how many iterations fit in one sample window?
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let iters = (TARGET_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        for _ in 0..self.sample_count {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push((iters, t.elapsed()));
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.clamp(2, MAX_SAMPLES);
        self
    }

    /// Record the work per iteration for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.render());
        run_bench(&label, self.sample_size, self.throughput, |b| f(b));
        self.criterion.ran += 1;
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.render());
        run_bench(&label, self.sample_size, self.throughput, |b| f(b, input));
        self.criterion.ran += 1;
        self
    }

    /// End the group (printing is immediate; this is a no-op for layout).
    pub fn finish(&mut self) {}
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    ran: usize,
}

impl Criterion {
    /// Accept and ignore command-line configuration (`--bench`, filters).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            criterion: self,
        }
    }

    /// Run an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(&id.render(), 10, None, |b| f(b));
        self.ran += 1;
        self
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    label: &str,
    samples: usize,
    tp: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_count: samples.clamp(2, MAX_SAMPLES),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<52} (no measurement)");
        return;
    }
    let mut per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|(iters, d)| d.as_secs_f64() / *iters as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let rate = match tp {
        Some(Throughput::Elements(n)) => format!("  {:>10.0} elem/s", n as f64 / median),
        Some(Throughput::Bytes(n)) => format!("  {:>10.0} B/s", n as f64 / median),
        None => String::new(),
    };
    println!(
        "{label:<52} median {}{}  ({} samples)",
        format_time(median),
        rate,
        per_iter.len()
    );
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:8.2} ns/iter", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:8.2} µs/iter", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:8.2} ms/iter", secs * 1e3)
    } else {
        format!("{secs:8.3} s/iter")
    }
}

/// Declare a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut count = 0u64;
        g.bench_function("noop", |b| {
            b.iter(|| {
                count = count.wrapping_add(1);
                count
            })
        });
        g.finish();
        assert!(count > 0);
    }

    #[test]
    fn id_rendering() {
        assert_eq!(BenchmarkId::new("f", 8).render(), "f/8");
        assert_eq!(BenchmarkId::from("plain").render(), "plain");
    }
}
