//! ASL→SQL translation walkthrough: show the automatically generated
//! relational schema, the SQL a property compiles to, and the cost gap
//! between client-side evaluation and in-database evaluation (the §5
//! work-distribution insight).
//!
//! ```sh
//! cargo run --release --example sql_translation
//! ```

use kojak::apprentice_sim::{archetypes, simulate_program, MachineModel};
use kojak::asl_eval::{CosyData, Value};
use kojak::asl_sql::{compile_property, generate_schema, loader, property::eval_compiled_conn};
use kojak::cosy::suite::standard_suite;
use kojak::perfdata::Store;
use kojak::reldb::remote::{connection::share, ApiBinding, BackendProfile, Connection};
use kojak::reldb::Database;

fn main() {
    let spec = standard_suite();
    let schema = generate_schema(&spec.model).expect("schema");

    println!("=== automatically generated schema (from the ASL data model) ===\n");
    for ddl in schema.ddl() {
        println!("{ddl};");
    }

    // Data.
    let machine = MachineModel::t3e_900();
    let mut store = Store::new();
    let model = archetypes::particle_mc(5);
    let version = simulate_program(&mut store, &model, &machine, &[1, 16]);
    let run16 = store.versions[version.index()].runs[1];
    let main = store.main_region(version).unwrap();

    // Pick the move loop: the barrier-heavy region.
    let loop_region = store
        .regions
        .iter()
        .position(|r| r.name.contains("loop@22"))
        .expect("move loop exists") as u32;

    let args = [
        Value::obj("Region", loop_region),
        Value::run(run16),
        Value::region(main),
    ];
    let cp = compile_property(&spec, &schema, "SyncCost", &args).expect("compile");
    println!(
        "\n=== SyncCost compiled for (region {loop_region}, run {}) ===\n",
        run16.0
    );
    for (what, queries) in [
        ("condition", &cp.conditions),
        ("confidence", &cp.confidence),
        ("severity", &cp.severity),
    ] {
        for q in queries {
            println!("-- {what}\n{};\n", q.sql());
        }
    }

    // Load the database and compare the two §5 strategies on Oracle/JDBC.
    let mut db = Database::new();
    schema.create_all(&mut db).expect("ddl");
    let data = CosyData::new(&store);
    loader::load_store(&mut db, &schema, &spec.model, &data).expect("load");
    let shared = share(db);

    // Strategy A: translate conditions entirely into SQL.
    let mut sql_conn = Connection::connect(
        shared.clone(),
        BackendProfile::oracle7(),
        ApiBinding::jdbc(),
    );
    let outcome = eval_compiled_conn(&mut sql_conn, &cp).expect("sql eval");
    let sql_cost = sql_conn.elapsed();

    // Strategy B: fetch the data components and evaluate in the tool.
    let mut client_conn =
        Connection::connect(shared, BackendProfile::oracle7(), ApiBinding::jdbc());
    let mut barrier_time = 0.0f64;
    let mut cur = client_conn
        .open_cursor("SELECT TypTimes_owner, Run_id, Type, Time FROM TypedTiming")
        .expect("cursor");
    let mut fetched = 0usize;
    while let Some(row) = cur.fetch() {
        fetched += 1;
        if row[0].as_i64() == Some(loop_region as i64)
            && row[1].as_i64() == Some(run16.0 as i64)
            && row[2].as_str() == Some("Barrier")
        {
            barrier_time += row[3].as_f64().unwrap_or(0.0);
        }
    }
    // (The client would still need TotalTiming for the severity ratio.)
    let mut cur = client_conn
        .open_cursor("SELECT TotTimes_owner, Run_id, Incl FROM TotalTiming")
        .expect("cursor");
    while let Some(row) = cur.fetch() {
        fetched += 1;
        let _ = row;
    }
    let client_cost = client_conn.elapsed();

    println!("=== §5 work distribution (Oracle 7 over JDBC) ===\n");
    println!(
        "SQL-side evaluation : {:>8.1} ms  (holds={}, severity {:.2}%)",
        sql_cost * 1e3,
        outcome.holds,
        outcome.severity * 100.0
    );
    println!(
        "client-side fetch   : {:>8.1} ms  ({} records at ~1 ms each; barrier sum {:.3}s)",
        client_cost * 1e3,
        fetched,
        barrier_time
    );
    println!(
        "\nadvantage of full SQL translation: {:.0}x — the paper: \"It is a significant \
         advantage to translate the conditions of performance properties entirely into \
         SQL queries\"",
        client_cost / sql_cost
    );
}
