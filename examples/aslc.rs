//! `aslc` — a small ASL specification checker/compiler CLI.
//!
//! ```sh
//! cargo run --release --example aslc -- path/to/spec.asl           # check
//! cargo run --release --example aslc -- --schema path/to/spec.asl  # + DDL
//! cargo run --release --example aslc -- --pretty path/to/spec.asl  # format
//! cargo run --release --example aslc                               # check the built-in COSY suite
//! ```
//!
//! Exit code 0 when the specification checks; 1 with rendered diagnostics
//! otherwise — usable as a CI gate for specification files. Warnings the
//! checker records on the success path (e.g. a constant confidence
//! outside `[0, 1]`) are rendered as caret snippets; `--deny-warnings`
//! turns them into a failing exit code too.

use kojak::asl_core::{parse_and_check, pretty};
use kojak::asl_sql::generate_schema;
use std::io::Read;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let want_schema = take_flag(&mut args, "--schema");
    let want_pretty = take_flag(&mut args, "--pretty");
    let deny_warnings = take_flag(&mut args, "--deny-warnings");

    let (name, source) = match args.first().map(String::as_str) {
        Some("-") => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .expect("read stdin");
            ("<stdin>".to_string(), buf)
        }
        Some(path) => (
            path.to_string(),
            std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("aslc: cannot read {path}: {e}");
                std::process::exit(2);
            }),
        ),
        None => (
            "<built-in COSY suite>".to_string(),
            kojak::cosy::suite::standard_suite_source(),
        ),
    };

    let spec = match parse_and_check(&source) {
        Ok(spec) => spec,
        Err(diags) => {
            eprint!("{}", diags.render(&source));
            eprintln!("aslc: {name}: specification has errors");
            std::process::exit(1);
        }
    };

    if !spec.warnings.is_empty() {
        eprint!("{}", spec.warnings.render_snippets(&source));
        if deny_warnings {
            eprintln!("aslc: {name}: warnings present and --deny-warnings set");
            std::process::exit(1);
        }
    }

    println!(
        "{name}: OK — {} class(es), {} enum(s), {} constant(s), {} function(s), {} propert(y/ies)",
        spec.spec.classes.len(),
        spec.spec.enums.len(),
        spec.spec.constants.len(),
        spec.spec.functions.len(),
        spec.properties().len(),
    );

    if want_pretty {
        println!("\n{}", pretty::print_spec(&spec.spec));
    }

    if want_schema {
        match generate_schema(&spec.model) {
            Ok(schema) => {
                println!("\n-- generated relational schema");
                for ddl in schema.ddl() {
                    println!("{ddl};");
                }
            }
            Err(e) => {
                eprintln!("aslc: schema generation failed: {e}");
                std::process::exit(1);
            }
        }
    }
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}
