//! Database backend comparison (the §5 experiment): transfer a full
//! Apprentice dataset into the performance database through each simulated
//! backend and report the virtual-clock insertion time.
//!
//! Expected shape (paper): Oracle ≈ 2x slower than MS SQL Server and
//! Postgres; the in-process MS Access setup ≈ 20x faster than Oracle.
//!
//! ```sh
//! cargo run --release --example db_backends
//! ```

use kojak::apprentice_sim::{archetypes, simulate_program, MachineModel};
use kojak::asl_eval::CosyData;
use kojak::asl_sql::{generate_schema, loader};
use kojak::cosy::suite::standard_suite;
use kojak::perfdata::Store;
use kojak::reldb::remote::{connection::share, ApiBinding, BackendProfile, Connection};
use kojak::reldb::Database;

fn main() {
    // One application, three versions, PE sweep — a realistic database.
    let machine = MachineModel::t3e_900();
    let mut store = Store::new();
    for seed in 0..3 {
        let model = archetypes::particle_mc(seed);
        simulate_program(&mut store, &model, &machine, &[1, 4, 16, 64]);
    }

    let spec = standard_suite();
    let schema = generate_schema(&spec.model).expect("schema");
    let data = CosyData::new(&store);
    let stmts = loader::insert_statements(&schema, &spec.model, &data).expect("rows");
    println!(
        "transferring {} rows of performance data (row-at-a-time INSERTs)\n",
        stmts.len()
    );

    // §5: all servers are accessed over the network via JDBC, except MS
    // Access which runs in-process.
    let setups = [
        (BackendProfile::oracle7(), ApiBinding::jdbc()),
        (BackendProfile::mssql7(), ApiBinding::jdbc()),
        (BackendProfile::postgres(), ApiBinding::jdbc()),
        (BackendProfile::msaccess(), ApiBinding::native_c()),
    ];

    let mut results = Vec::new();
    for (profile, binding) in setups {
        let db = share(Database::new());
        let mut conn = Connection::connect(db, profile.clone(), binding.clone());
        for ddl in schema.ddl() {
            conn.execute(&ddl).expect("ddl");
        }
        conn.reset_clock();
        for stmt in &stmts {
            conn.execute(stmt).expect("insert");
        }
        results.push((profile.name, binding.name, conn.elapsed()));
    }

    let oracle = results[0].2;
    println!(
        "{:<18} {:<10} {:>12} {:>14}",
        "backend", "binding", "insert[s]", "vs Oracle 7"
    );
    for (name, binding, secs) in &results {
        println!(
            "{:<18} {:<10} {:>12.2} {:>13.1}x",
            name,
            binding,
            secs,
            oracle / secs
        );
    }
    println!(
        "\npaper: \"Oracle was a factor of 2 slower than MS SQL server and Postgres, \
         MS Access outperformed all those systems. Insertion ... was a factor of 20 \
         faster than with the Oracle server.\""
    );
}
