//! Quickstart: simulate a parallel application, stream it through the
//! engine API, and print the ranked performance properties.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use kojak::apprentice_sim::{archetypes, simulate_program, MachineModel};
use kojak::cosy::report;
use kojak::engine::{AnalysisEngine, EngineBuilder};
use kojak::online::replay::{replay_run_key, replay_store};
use kojak::perfdata::Store;

fn main() {
    // 1. A synthetic application (substitute for an instrumented T3E code):
    //    a particle Monte-Carlo code with strong load imbalance.
    let model = archetypes::particle_mc(42);
    let machine = MachineModel::t3e_900();

    // 2. "Apprentice" produces summary data for a PE sweep; the reference
    //    run (fewest PEs) defines optimal speedup.
    let mut store = Store::new();
    let version = simulate_program(&mut store, &model, &machine, &[1, 4, 16, 64]);
    println!(
        "simulated {} regions x {} runs -> {} objects in the performance database\n",
        store.regions.len(),
        store.versions[version.index()].runs.len(),
        store.object_count()
    );

    // 3. One engine API for every analysis shape. `.batch()` is the
    //    paper's one-shot COSY workflow; drop it for the incremental
    //    online engine, add `.durable(dir)`/`.shards(n)` to scale out —
    //    the code below stays the same.
    let engine = EngineBuilder::new().batch().build().expect("engine");
    engine
        .ingest_batch(&replay_store(&store))
        .expect("ingest the simulated trace stream");
    engine.flush().expect("analysis");

    // 4. The ranked report of the 64-PE run: problems and the bottleneck.
    let run64 = *store.versions[version.index()].runs.last().unwrap();
    let analysis = engine
        .report(replay_run_key(run64))
        .expect("report for the 64-PE run");
    println!("{}", report::render_text(&analysis));
}
