//! Quickstart: simulate a parallel application, run the COSY analyzer, and
//! print the ranked performance properties.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use kojak::apprentice_sim::{archetypes, simulate_program, MachineModel};
use kojak::cosy::{report, Analyzer, Backend, ProblemThreshold};
use kojak::perfdata::Store;

fn main() {
    // 1. A synthetic application (substitute for an instrumented T3E code):
    //    a particle Monte-Carlo code with strong load imbalance.
    let model = archetypes::particle_mc(42);
    let machine = MachineModel::t3e_900();

    // 2. "Apprentice" produces summary data for a PE sweep; the reference
    //    run (fewest PEs) defines optimal speedup.
    let mut store = Store::new();
    let version = simulate_program(&mut store, &model, &machine, &[1, 4, 16, 64]);
    println!(
        "simulated {} regions x {} runs -> {} objects in the performance database\n",
        store.regions.len(),
        store.versions[version.index()].runs.len(),
        store.object_count()
    );

    // 3. COSY: evaluate the ASL property suite for the 64-PE run, rank by
    //    severity, report problems and the bottleneck.
    let run64 = *store.versions[version.index()].runs.last().unwrap();
    let analyzer = Analyzer::new(&store, version).expect("analyzer");
    let analysis = analyzer
        .analyze(run64, Backend::Interpreter, ProblemThreshold::default())
        .expect("analysis");

    println!("{}", report::render_text(&analysis));
}
