//! The `online_stream` demo split into real producer/server processes:
//! instrumented runs stream [`TraceEvent`]s over TCP into an
//! [`EngineServer`] fronting any engine shape `EngineBuilder` can make.
//!
//! ```sh
//! # One terminal: the analysis server (any engine shape).
//! cargo run --release --example net_stream -- --serve 127.0.0.1:7457
//! cargo run --release --example net_stream -- --serve 127.0.0.1:7457 --shards 4
//! cargo run --release --example net_stream -- --serve 127.0.0.1:7457 --durable /tmp/kojak-net
//!
//! # Other terminals: one producer per monitored program.
//! cargo run --release --example net_stream -- --produce 127.0.0.1:7457 --producer-id 1
//! cargo run --release --example net_stream -- --produce 127.0.0.1:7457 --producer-id 2 --seed 9
//!
//! # Or everything at once over real loopback sockets:
//! cargo run --release --example net_stream
//!
//! # Poll a live server's metrics over the wire (Prometheus-style text):
//! cargo run --release --example net_stream -- --introspect 127.0.0.1:7457
//! ```
//!
//! A producer killed mid-stream (ctrl-C) can simply be re-run with the
//! same `--producer-id`: the handshake returns the server's last
//! acknowledged sequence number and the already-applied prefix of the
//! re-offered stream is skipped — no duplicates, no losses.

use kojak::apprentice_sim::{archetypes, simulate_program, MachineModel};
use kojak::cosy::report::render_text;
use kojak::engine::EngineBuilder;
use kojak::net::{EngineServer, ProducerConfig, ServerConfig, TraceProducer};
use kojak::online::replay::{events_for_run, replay_run_key};
use kojak::perfdata::{Store, TestRunId};
use std::sync::Arc;

fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn shards_arg() -> usize {
    arg_value("--shards")
        .and_then(|n| n.parse().ok())
        .unwrap_or(1)
}

fn main() {
    if let Some(addr) = arg_value("--serve") {
        serve(&addr, shards_arg(), arg_value("--durable"));
    } else if let Some(addr) = arg_value("--introspect") {
        introspect(&addr);
    } else if let Some(addr) = arg_value("--produce") {
        let id = arg_value("--producer-id")
            .and_then(|n| n.parse().ok())
            .unwrap_or(1);
        let seed = arg_value("--seed")
            .and_then(|n| n.parse().ok())
            .unwrap_or(42);
        produce(&addr, id, seed);
    } else {
        demo(shards_arg());
    }
}

/// The server process: one engine, N remote producers, live reports on
/// demand (Enter prints the current report of every finished run).
fn serve(addr: &str, shards: usize, durable: Option<String>) {
    let mut builder = EngineBuilder::new().shards(shards);
    if let Some(dir) = &durable {
        builder = builder.durable(dir);
    }
    let engine = Arc::new(builder.build().expect("build engine"));
    let server = EngineServer::bind(addr, engine, ServerConfig::default()).expect("bind");
    println!(
        "serving {} engine on {} (spec {:#018x}) — Enter for a report, ctrl-C to stop",
        match (shards > 1, durable.is_some()) {
            (true, true) => "sharded durable",
            (true, false) => "sharded in-memory",
            (false, true) => "durable",
            (false, false) => "in-memory",
        },
        server.local_addr(),
        kojak::net::standard_spec_hash(),
    );
    let mut line = String::new();
    while std::io::stdin().read_line(&mut line).is_ok() {
        server.engine().flush().expect("flush");
        let stats = server.engine().stats();
        let net = server.stats();
        println!(
            "{} events applied ({} rejected) from {} connection(s), {} batch(es), \
             {} deduplicated; {} runs finished",
            stats.events_applied,
            stats.events_rejected,
            net.connections_accepted,
            net.batches_received,
            net.events_deduplicated,
            stats.runs_finished,
        );
        for (key, report) in server.engine().reports() {
            println!("--- {key}\n{}", render_text(&report));
        }
        line.clear();
    }
}

/// Poll a running server's live metric registry over the wire (the
/// `Introspect` RPC, negotiated as a feature bit at handshake) and print
/// it Prometheus-style: every engine stage histogram (p50/p90/p99), the
/// per-layer counters, and the eval-cache hit rate.
fn introspect(addr: &str) {
    let mut probe = TraceProducer::connect(
        addr,
        ProducerConfig {
            // A probe identity well away from real producers: it streams
            // nothing, so it never advances an ack ledger anyone shares.
            producer_id: u64::MAX,
            ..ProducerConfig::default()
        },
    )
    .expect("connect (is the server running?)");
    let snapshot = probe.introspect().expect("introspect");
    print!("{}", snapshot.render_text());
}

/// A producer process: simulate one program's PE sweep and stream every
/// run's events to the server.
fn produce(addr: &str, producer_id: u64, seed: u64) {
    let mut store = Store::new();
    simulate_program(
        &mut store,
        &archetypes::particle_mc(seed),
        &MachineModel::t3e_900(),
        &[1, 4, 16, 64],
    );
    let mut producer = TraceProducer::connect(
        addr,
        ProducerConfig {
            // Distinct run keys per producer id so independent producers
            // never collide on the shared server.
            producer_id,
            ..ProducerConfig::default()
        },
    )
    .expect("connect (is the server running?)");
    if producer.resume_from() > 0 {
        println!(
            "server already acknowledged {} events — resuming after them",
            producer.resume_from()
        );
    }
    for r in 0..store.runs.len() as u32 {
        for event in events_for_run(&store, TestRunId(r)) {
            let key = kojak::online::RunKey(producer_id * 1_000 + event.run_key().0);
            producer.send(&event.with_run(key)).expect("send");
        }
    }
    let stats = producer.close().expect("close");
    println!(
        "streamed {} events ({} skipped as already-acked, {} resent over {} reconnect(s))",
        stats.events_sent, stats.events_skipped_resume, stats.events_resent, stats.reconnects,
    );
}

/// Both roles in one process, over real loopback sockets: a server
/// fronting the configured engine, two concurrent producers.
fn demo(shards: usize) {
    let engine = Arc::new(
        EngineBuilder::new()
            .shards(shards)
            .build()
            .expect("build engine"),
    );
    let server = EngineServer::bind("127.0.0.1:0", engine, ServerConfig::default()).expect("bind");
    let addr = server.local_addr().to_string();
    println!("server on {addr} ({shards} shard(s)); starting 2 producers\n");

    let mut store = Store::new();
    simulate_program(
        &mut store,
        &archetypes::particle_mc(42),
        &MachineModel::t3e_900(),
        &[1, 4, 16, 64],
    );
    let runs: Vec<TestRunId> = (0..store.runs.len() as u32).map(TestRunId).collect();
    std::thread::scope(|scope| {
        for (i, part) in runs.chunks(runs.len().div_ceil(2)).enumerate() {
            let addr = addr.clone();
            let store = &store;
            scope.spawn(move || {
                let mut producer = TraceProducer::connect(
                    &addr,
                    ProducerConfig {
                        producer_id: i as u64 + 1,
                        ..ProducerConfig::default()
                    },
                )
                .expect("connect");
                for &run in part {
                    for event in events_for_run(store, run) {
                        producer.send(&event).expect("send");
                    }
                }
                let stats = producer.close().expect("close");
                println!(
                    "producer {}: {} events sent, {} acked",
                    i + 1,
                    stats.events_sent,
                    stats.events_acked
                );
            });
        }
    });

    server.engine().flush().expect("flush");
    let stats = server.engine().stats();
    println!(
        "\nserver applied {} events ({} rejected); {} runs finished",
        stats.events_applied, stats.events_rejected, stats.runs_finished
    );
    let run64 = TestRunId(store.runs.len() as u32 - 1);
    let report = server
        .engine()
        .report(replay_run_key(run64))
        .expect("live report for the 64-PE run");
    println!("{}", render_text(&report));
    server.shutdown();
}
