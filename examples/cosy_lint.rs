//! `cosy_lint` — the static-analysis CLI over COSY/ASL specifications.
//!
//! ```sh
//! cargo run --release --example cosy_lint                       # lint the built-in suite
//! cargo run --release --example cosy_lint -- spec.asl more.asl  # lint files
//! cargo run --release --example cosy_lint -- --json spec.asl    # machine-readable report
//! cargo run --release --example cosy_lint -- --cost             # static cost ranking
//! cargo run --release --example cosy_lint -- --deny-warnings …  # exit 1 on any finding
//! cargo run --release --example cosy_lint -- --rules            # list the rule catalog
//! ```
//!
//! Pass `-` to read from stdin. `--with-suite` prepends the built-in
//! data model and standard properties, for spec files that extend the
//! COSY suite (e.g. `examples/specs/*.asl`). A file may suppress rules
//! file-wide with `// cosy-lint: allow(rule-a, rule-b): reason`. Exit
//! codes: 0 clean (or findings tolerated), 1 findings under
//! `--deny-warnings` or front-end errors, 2 usage/IO errors — usable as
//! a CI gate.

use std::io::Read;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let want_json = take_flag(&mut args, "--json");
    let want_cost = take_flag(&mut args, "--cost");
    let deny = take_flag(&mut args, "--deny-warnings");
    let with_suite = take_flag(&mut args, "--with-suite");
    if take_flag(&mut args, "--rules") {
        for (name, description) in kojak::lint::rule_catalog() {
            println!("{name:<24} {description}");
        }
        return;
    }

    let inputs: Vec<(String, String)> = if args.is_empty() {
        vec![(
            "<built-in COSY suite>".to_string(),
            kojak::cosy::suite::standard_suite_source(),
        )]
    } else {
        args.iter()
            .map(|a| {
                let (name, source) = read_input(a);
                if with_suite {
                    let full = format!("{}\n{source}", kojak::cosy::suite::standard_suite_source());
                    (name, full)
                } else {
                    (name, source)
                }
            })
            .collect()
    };

    let mut dirty = false;
    for (name, source) in &inputs {
        let report = match kojak::lint::lint_source(source) {
            Ok(report) => report,
            Err(diags) => {
                eprint!("{}", diags.render(source));
                eprintln!("cosy_lint: {name}: specification has errors");
                std::process::exit(1);
            }
        };
        if inputs.len() > 1 {
            println!("==> {name}");
        }
        if want_json {
            println!("{}", report.to_json(source));
        } else {
            print!("{}", report.render_text(source));
            if want_cost {
                print!("{}", report.render_costs());
            }
        }
        dirty |= !report.is_clean();
    }
    if deny && dirty {
        eprintln!("cosy_lint: findings present and --deny-warnings set");
        std::process::exit(1);
    }
}

fn read_input(arg: &str) -> (String, String) {
    if arg == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .expect("read stdin");
        return ("<stdin>".to_string(), buf);
    }
    match std::fs::read_to_string(arg) {
        Ok(source) => (arg.to_string(), source),
        Err(e) => {
            eprintln!("cosy_lint: cannot read {arg}: {e}");
            std::process::exit(2);
        }
    }
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}
