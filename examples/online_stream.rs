//! Online streaming: feed trace events from concurrently executing test
//! runs through the sharded ingestion pipeline and watch the live,
//! incrementally maintained analysis reports.
//!
//! ```sh
//! cargo run --release --example online_stream
//! cargo run --release --example online_stream -- --shards 4
//! cargo run --release --example online_stream -- --kill-resume
//! cargo run --release --example online_stream -- --kill-resume --shards 4
//! ```
//!
//! `--shards N` builds the engine as N independent shards — with
//! durability, one WAL + snapshot pair per shard. The `--kill-resume`
//! mode demonstrates the durable engine: half the stream goes into a
//! durable engine that is then dropped without any shutdown (a process
//! kill), recovered from its write-ahead log(s) + snapshot(s), and fed
//! the remaining half — ending with the same reports an uninterrupted
//! session would show.

use kojak::apprentice_sim::{archetypes, simulate_program, MachineModel};
use kojak::cosy::report::render_text;
use kojak::engine::{AnalysisEngine, Engine, EngineBuilder};
use kojak::online::replay::{events_for_run, replay_run_key, replay_store};
use kojak::online::{FsyncPolicy, IngestPipeline, PipelineConfig};
use kojak::perfdata::{Store, TestRunId};
use std::sync::Arc;

fn shards_arg() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--shards")
        .and_then(|i| args.get(i + 1))
        .and_then(|n| n.parse().ok())
        .unwrap_or(1)
}

fn main() {
    if std::env::args().any(|a| a == "--kill-resume") {
        kill_resume_demo(shards_arg());
        return;
    }
    streaming_demo(shards_arg());
}

fn kill_resume_demo(shards: usize) {
    let model = archetypes::particle_mc(42);
    let machine = MachineModel::t3e_900();
    let mut store = Store::new();
    simulate_program(&mut store, &model, &machine, &[1, 4, 16, 64]);
    let events = replay_store(&store);
    let cut = events.len() / 2;

    let dir = std::env::temp_dir().join(format!("kojak-online-stream-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let engine = || -> Engine {
        EngineBuilder::new()
            .durable(&dir)
            .shards(shards)
            .fsync(FsyncPolicy::EveryN(256))
            .snapshot_every_flushes(4)
            .build()
            .expect("open durable engine")
    };

    // Phase 1: stream half the events durably, then "kill" the process.
    let session = engine();
    for batch in events[..cut].chunks(64) {
        session.ingest_batch(batch).expect("ingest");
        session.flush().expect("flush");
    }
    println!(
        "phase 1: {} events ingested durably across {} shard(s), then the process dies\n",
        session.stats().events_applied,
        shards.max(1),
    );
    drop(session); // no checkpoint, no graceful shutdown: this is the kill

    // Phase 2: recover and resume.
    let session = engine();
    for r in session.recovery().expect("durable engines report recovery") {
        println!(
            "phase 2: recovered {} snapshot events + {} WAL-tail events{}",
            r.snapshot_events,
            r.wal_events_replayed,
            match &r.wal_corruption {
                Some(c) => format!("  (skipped torn tail: {c})"),
                None => String::new(),
            }
        );
    }
    for batch in events[cut..].chunks(64) {
        session.ingest_batch(batch).expect("ingest");
        session.flush().expect("flush");
    }
    let stats = session.stats();
    println!(
        "resumed to {} applied events ({} replayed at recovery); {} runs finished\n",
        stats.events_applied, stats.events_replayed, stats.runs_finished,
    );

    // The resumed engine ends exactly where an uninterrupted one would.
    let uninterrupted = EngineBuilder::new().build_online();
    uninterrupted.ingest_batch(&events).expect("ingest");
    uninterrupted.flush().expect("flush");
    let run64 = TestRunId(store.runs.len() as u32 - 1);
    let resumed_report = session
        .report(replay_run_key(run64))
        .expect("live report for the 64-PE run");
    assert_eq!(
        Some(&resumed_report),
        uninterrupted.report(replay_run_key(run64)).as_ref(),
        "kill-and-resume must converge to the uninterrupted reports"
    );
    println!("{}", render_text(&resumed_report));
    let _ = std::fs::remove_dir_all(&dir);
}

fn streaming_demo(shards: usize) {
    // A simulated PE sweep stands in for live producers: its runs are
    // decomposed into the event streams the instrumented runs would emit.
    let model = archetypes::particle_mc(42);
    let machine = MachineModel::t3e_900();
    let mut store = Store::new();
    simulate_program(&mut store, &model, &machine, &[1, 4, 16, 64]);

    // One producer thread per run, all streaming concurrently. With the
    // default single shard, the in-process pipeline (thread sharding,
    // per-run batching, bounded queues) demonstrates the producer side;
    // with `--shards N`, the engine's own ingest_batch fans out over N
    // independent shards behind the same AnalysisEngine surface.
    if shards <= 1 {
        let session = Arc::new(EngineBuilder::new().build_online());
        let pipeline = Arc::new(IngestPipeline::new(
            Arc::clone(&session),
            PipelineConfig {
                shards: 4,
                batch_size: 32,
                queue_capacity: 256,
            },
        ));
        std::thread::scope(|scope| {
            for r in 0..store.runs.len() as u32 {
                let events = events_for_run(&store, TestRunId(r));
                let pipeline = Arc::clone(&pipeline);
                scope.spawn(move || {
                    for event in events {
                        pipeline.submit(event).expect("submit");
                    }
                });
            }
        });
        let pipeline = Arc::into_inner(pipeline).expect("all producers done");
        let stats = pipeline.close().expect("close");
        println!(
            "pipeline: {} events in {} batches across 4 worker shards",
            stats.events, stats.batches
        );
        report_outcome(session.as_ref() as &dyn AnalysisEngine, &store);
    } else {
        let engine = Arc::new(
            EngineBuilder::new()
                .shards(shards)
                .build()
                .expect("in-memory sharded engine"),
        );
        std::thread::scope(|scope| {
            for r in 0..store.runs.len() as u32 {
                let events = events_for_run(&store, TestRunId(r));
                let engine = Arc::clone(&engine);
                scope.spawn(move || {
                    for batch in events.chunks(32) {
                        engine.ingest_batch(batch).expect("ingest");
                    }
                });
            }
        });
        engine.flush().expect("flush");
        println!("sharded engine: {} shard(s)", shards);
        report_outcome(engine.as_ref(), &store);
    }
}

fn report_outcome(engine: &dyn AnalysisEngine, store: &Store) {
    let stats = engine.stats();
    println!(
        "ingested {} events ({} rejected); incremental engine: {} flushes, {} run \
         re-evaluations, {} property instances\n",
        stats.events_applied,
        stats.events_rejected,
        stats.incremental.flushes,
        stats.incremental.runs_reevaluated,
        stats.incremental.instances_evaluated,
    );

    // The live report of the largest configuration.
    let run64 = TestRunId(store.runs.len() as u32 - 1);
    let report = engine
        .report(replay_run_key(run64))
        .expect("live report for the 64-PE run");
    println!("{}", render_text(&report));
}
