//! Online streaming: feed trace events from concurrently executing test
//! runs through the sharded ingestion pipeline and watch the live,
//! incrementally maintained analysis reports.
//!
//! ```sh
//! cargo run --release --example online_stream
//! ```

use kojak::apprentice_sim::{archetypes, simulate_program, MachineModel};
use kojak::cosy::report::render_text;
use kojak::online::replay::{events_for_run, replay_run_key};
use kojak::online::{IngestPipeline, OnlineSession, PipelineConfig, SessionConfig};
use kojak::perfdata::{Store, TestRunId};
use std::sync::Arc;

fn main() {
    // A simulated PE sweep stands in for live producers: its runs are
    // decomposed into the event streams the instrumented runs would emit.
    let model = archetypes::particle_mc(42);
    let machine = MachineModel::t3e_900();
    let mut store = Store::new();
    simulate_program(&mut store, &model, &machine, &[1, 4, 16, 64]);

    let session = Arc::new(OnlineSession::new(SessionConfig::default()));
    let pipeline = Arc::new(IngestPipeline::new(
        Arc::clone(&session),
        PipelineConfig {
            shards: 4,
            batch_size: 32,
            queue_capacity: 256,
        },
    ));

    // One producer thread per run, all streaming concurrently.
    std::thread::scope(|scope| {
        for r in 0..store.runs.len() as u32 {
            let events = events_for_run(&store, TestRunId(r));
            let pipeline = Arc::clone(&pipeline);
            scope.spawn(move || {
                for event in events {
                    pipeline.submit(event).expect("submit");
                }
            });
        }
    });

    let pipeline = Arc::into_inner(pipeline).expect("all producers done");
    let stats = pipeline.close().expect("close");
    let session_stats = session.stats();
    println!(
        "ingested {} events in {} batches  ({} applied, {} rejected)",
        stats.events, stats.batches, session_stats.events_applied, session_stats.events_rejected,
    );
    println!(
        "incremental engine: {} flushes, {} run re-evaluations, {} property instances\n",
        session_stats.incremental.flushes,
        session_stats.incremental.runs_reevaluated,
        session_stats.incremental.instances_evaluated,
    );

    // The live report of the largest configuration.
    let run64 = TestRunId(store.runs.len() as u32 - 1);
    let report = session
        .report(replay_run_key(run64))
        .expect("live report for the 64-PE run");
    println!("{}", render_text(&report));
}
