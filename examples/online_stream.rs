//! Online streaming: feed trace events from concurrently executing test
//! runs through the sharded ingestion pipeline and watch the live,
//! incrementally maintained analysis reports.
//!
//! ```sh
//! cargo run --release --example online_stream
//! cargo run --release --example online_stream -- --kill-resume
//! ```
//!
//! The `--kill-resume` mode demonstrates the durable session: half the
//! stream goes into a `DurableSession` that is then dropped without any
//! shutdown (a process kill), recovered from its write-ahead log +
//! snapshot, and fed the remaining half — ending with the same reports an
//! uninterrupted session would show.

use kojak::apprentice_sim::{archetypes, simulate_program, MachineModel};
use kojak::cosy::report::render_text;
use kojak::online::replay::{events_for_run, replay_run_key, replay_store};
use kojak::online::{
    DurableConfig, DurableSession, FsyncPolicy, IngestPipeline, OnlineSession, PipelineConfig,
    SessionConfig,
};
use kojak::perfdata::{Store, TestRunId};
use std::sync::Arc;

fn main() {
    if std::env::args().any(|a| a == "--kill-resume") {
        kill_resume_demo();
        return;
    }
    streaming_demo();
}

fn kill_resume_demo() {
    let model = archetypes::particle_mc(42);
    let machine = MachineModel::t3e_900();
    let mut store = Store::new();
    simulate_program(&mut store, &model, &machine, &[1, 4, 16, 64]);
    let events = replay_store(&store);
    let cut = events.len() / 2;

    let dir = std::env::temp_dir().join(format!("kojak-online-stream-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = || DurableConfig {
        session: SessionConfig::default(),
        fsync: FsyncPolicy::EveryN(256),
        snapshot_every_flushes: 4,
    };

    // Phase 1: stream half the events durably, then "kill" the process.
    let session = DurableSession::open(&dir, config()).expect("open durable session");
    for batch in events[..cut].chunks(64) {
        session.ingest_batch(batch).expect("ingest");
        session.flush().expect("flush");
    }
    let before = session.stats();
    println!(
        "phase 1: {} events ingested durably ({} on the WAL after the last checkpoint), \
         then the process dies\n",
        before.events_applied,
        session.wal_len(),
    );
    drop(session); // no checkpoint, no graceful shutdown: this is the kill

    // Phase 2: recover and resume.
    let session = DurableSession::open(&dir, config()).expect("recover durable session");
    let r = session.recovery();
    println!(
        "phase 2: recovered {} snapshot events + {} WAL-tail events -> {} live reports{}",
        r.snapshot_events,
        r.wal_events_replayed,
        r.runs_recovered,
        match &r.wal_corruption {
            Some(c) => format!("  (skipped torn tail: {c})"),
            None => String::new(),
        }
    );
    for batch in events[cut..].chunks(64) {
        session.ingest_batch(batch).expect("ingest");
        session.flush().expect("flush");
    }
    let stats = session.stats();
    let mut finished = session.session().finished_run_keys();
    finished.sort();
    println!(
        "resumed to {} applied events ({} replayed at recovery); finished runs: {}\n",
        stats.events_applied,
        stats.events_replayed,
        finished
            .iter()
            .map(|k| k.to_string())
            .collect::<Vec<_>>()
            .join(", "),
    );

    // The resumed session ends exactly where an uninterrupted one would.
    let uninterrupted = OnlineSession::new(SessionConfig::default());
    uninterrupted.ingest_batch(&events).expect("ingest");
    uninterrupted.flush().expect("flush");
    let run64 = TestRunId(store.runs.len() as u32 - 1);
    let resumed_report = session
        .report(replay_run_key(run64))
        .expect("live report for the 64-PE run");
    assert_eq!(
        Some(&resumed_report),
        uninterrupted.report(replay_run_key(run64)).as_ref(),
        "kill-and-resume must converge to the uninterrupted reports"
    );
    println!("{}", render_text(&resumed_report));
    let _ = std::fs::remove_dir_all(&dir);
}

fn streaming_demo() {
    // A simulated PE sweep stands in for live producers: its runs are
    // decomposed into the event streams the instrumented runs would emit.
    let model = archetypes::particle_mc(42);
    let machine = MachineModel::t3e_900();
    let mut store = Store::new();
    simulate_program(&mut store, &model, &machine, &[1, 4, 16, 64]);

    let session = Arc::new(OnlineSession::new(SessionConfig::default()));
    let pipeline = Arc::new(IngestPipeline::new(
        Arc::clone(&session),
        PipelineConfig {
            shards: 4,
            batch_size: 32,
            queue_capacity: 256,
        },
    ));

    // One producer thread per run, all streaming concurrently.
    std::thread::scope(|scope| {
        for r in 0..store.runs.len() as u32 {
            let events = events_for_run(&store, TestRunId(r));
            let pipeline = Arc::clone(&pipeline);
            scope.spawn(move || {
                for event in events {
                    pipeline.submit(event).expect("submit");
                }
            });
        }
    });

    let pipeline = Arc::into_inner(pipeline).expect("all producers done");
    let stats = pipeline.close().expect("close");
    let session_stats = session.stats();
    println!(
        "ingested {} events in {} batches  ({} applied, {} rejected)",
        stats.events, stats.batches, session_stats.events_applied, session_stats.events_rejected,
    );
    println!(
        "incremental engine: {} flushes, {} run re-evaluations, {} property instances\n",
        session_stats.incremental.flushes,
        session_stats.incremental.runs_reevaluated,
        session_stats.incremental.instances_evaluated,
    );

    // The live report of the largest configuration.
    let run64 = TestRunId(store.runs.len() as u32 - 1);
    let report = session
        .report(replay_run_key(run64))
        .expect("live report for the 64-PE run");
    println!("{}", render_text(&report));
}
