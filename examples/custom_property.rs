//! Defining a new performance property in ASL and analyzing with it — the
//! retargetability story of the paper: adapting the tool to a new
//! environment or question means editing specifications, not tool code.
//!
//! The custom property flags regions whose I/O time grows faster than the
//! processor count (filesystem contention).
//!
//! ```sh
//! cargo run --release --example custom_property
//! ```

use kojak::apprentice_sim::{archetypes, simulate_program, MachineModel};
use kojak::asl_core::parse_and_check;
use kojak::asl_eval::COSY_DATA_MODEL;
use kojak::cosy::{report, Analyzer, Backend, ProblemThreshold};
use kojak::perfdata::Store;

/// The standard suite plus one custom property, loaded from the
/// standalone spec file (the same file CI lints with `cosy_lint`).
fn custom_suite_source() -> String {
    format!(
        "{}\n{}\n{}",
        COSY_DATA_MODEL,
        kojak::cosy::suite::SUITE_PROPERTIES,
        include_str!("specs/io_contention.asl")
    )
}

fn main() {
    let src = custom_suite_source();
    let spec = match parse_and_check(&src) {
        Ok(s) => s,
        Err(d) => {
            eprintln!("specification errors:\n{}", d.render(&src));
            std::process::exit(1);
        }
    };
    println!(
        "suite checked: {} properties ({} custom)\n",
        spec.properties().len(),
        spec.properties().len() - kojak::cosy::suite::SUITE.len()
    );

    // The I/O-heavy archetype shows the contention.
    let machine = MachineModel::t3e_900();
    let mut store = Store::new();
    let model = archetypes::spectral_io(11);
    let version = simulate_program(&mut store, &model, &machine, &[2, 64]);
    let run64 = store.versions[version.index()].runs[1];

    let analyzer = Analyzer::new(&store, version)
        .expect("analyzer")
        .with_suite(spec.clone());
    let analysis = analyzer
        .analyze(run64, Backend::Interpreter, ProblemThreshold::default())
        .expect("analysis");
    println!("{}", report::render_text(&analysis));

    // Evaluate the custom property explicitly on every region.
    use kojak::asl_eval::{CosyData, Interpreter, Value};
    let data = CosyData::new(&store);
    let interp = Interpreter::new(&spec, &data).expect("interp");
    let basis = store.main_region(version).unwrap();
    println!("custom IoContention per region at 64 PEs:");
    for (i, region) in store.regions.iter().enumerate() {
        let args = [
            Value::obj("Region", i as u32),
            Value::run(run64),
            Value::region(basis),
        ];
        match interp.eval_property("IoContention", &args) {
            Ok(o) if o.holds => println!(
                "  {:<28} severity {:6.2}%  confidence {:.2}",
                region.name,
                o.severity * 100.0,
                o.confidence
            ),
            _ => {}
        }
    }
}
