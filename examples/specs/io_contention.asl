// Custom property: I/O time that grew superlinearly vs the reference run
// indicates filesystem contention (shared-bandwidth saturation).
//
// This file extends the built-in COSY suite: lint or evaluate it with the
// data model and standard properties prepended, e.g.
//
//     cargo run --example cosy_lint -- --with-suite examples/specs/io_contention.asl
//
// cosy-lint: allow(residual-filter-scan): the IoNow/IoRef filters select by
// (Run, Type); the store indexes only (owner, Run), so the Type membership
// test runs per element. Same accepted hot path as the standard suite.

Property IoContention(Region r, TestRun t, Region Basis) {
    LET TotalTiming MinPeSum = UNIQUE({sum IN r.TotTimes WITH sum.Run.NoPe ==
            MIN(s.Run.NoPe WHERE s IN r.TotTimes)});
        float IoNow  = SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run==t
            AND (tt.Type == IoRead OR tt.Type == IoWrite));
        float IoRef  = SUM(tt.Time WHERE tt IN r.TypTimes AND tt.Run==MinPeSum.Run
            AND (tt.Type == IoRead OR tt.Type == IoWrite));
        float Growth = t.NoPe / MinPeSum.Run.NoPe
    IN
    CONDITION: (contended) IoRef > 0 AND IoNow > IoRef * Growth;
    CONFIDENCE: MAX((contended) -> 0.9);
    SEVERITY: MAX((contended) -> (IoNow - IoRef) / Duration(Basis,t));
}
