//! Cost scaling analysis: sweep the processor count for the three
//! application archetypes and print, per run, the total cost (lost cycles
//! relative to the reference run) and its breakdown into measured and
//! unmeasured portions — the headline use case of the paper's §3.
//!
//! ```sh
//! cargo run --release --example cost_analysis
//! ```

use kojak::apprentice_sim::{archetypes, simulate_program, MachineModel};
use kojak::cosy::{Analyzer, Backend, ProblemThreshold};
use kojak::perfdata::Store;

fn main() {
    let machine = MachineModel::t3e_900();
    let pe_sweep = [1u32, 2, 4, 8, 16, 32, 64, 128];

    for model in archetypes::all(7) {
        let mut store = Store::new();
        let version = simulate_program(&mut store, &model, &machine, &pe_sweep);
        let analyzer = Analyzer::new(&store, version).expect("analyzer");

        println!("=== {} ===", model.name);
        println!(
            "{:>6}  {:>12}  {:>11}  {:>11}  {:>11}  bottleneck",
            "PEs", "duration[s]", "total cost", "measured", "unmeasured"
        );
        for &run in &store.versions[version.index()].runs {
            let report = analyzer
                .analyze(run, Backend::Interpreter, ProblemThreshold::default())
                .expect("analysis");
            let find = |prop: &str| {
                report
                    .entries
                    .iter()
                    .find(|e| {
                        e.property == prop
                            && e.context.region
                                == report
                                    .entries
                                    .iter()
                                    .find(|x| x.property == "SublinearSpeedup")
                                    .and_then(|x| x.context.region)
                    })
                    .map(|e| e.severity)
                    .unwrap_or(0.0)
            };
            let bottleneck = report
                .bottleneck()
                .map(|b| format!("{} @ {}", b.property, b.context.label))
                .unwrap_or_else(|| "-".to_string());
            println!(
                "{:>6}  {:>12.3}  {:>10.1}%  {:>10.1}%  {:>10.1}%  {}",
                report.no_pe,
                report.basis_duration,
                report.total_cost * 100.0,
                find("MeasuredCost") * 100.0,
                find("UnmeasuredCost") * 100.0,
                bottleneck
            );
        }
        println!();
    }
}
